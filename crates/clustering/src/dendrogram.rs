//! The dendrogram: a binary merge tree over leaves, with leaf ordering,
//! cutting, cophenetic distances, ASCII rendering and Newick export.
//!
//! Built from the [`crate::hac::Merge`] sequence. This is the structure
//! behind the paper's Figures 2–6.

use serde::{Deserialize, Serialize};

use crate::condensed::CondensedMatrix;
use crate::hac::Merge;

/// A node of the dendrogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// An original observation.
    Leaf {
        /// Index of the observation in `0..n`.
        index: usize,
    },
    /// A merge of two children at a height.
    Internal {
        /// Left child (node index within the dendrogram arena).
        left: usize,
        /// Right child (node index within the dendrogram arena).
        right: usize,
        /// Merge height.
        height: f64,
        /// Number of leaves underneath.
        count: usize,
    },
}

/// A binary merge tree over `n` leaves, stored as an arena: nodes
/// `0..n` are leaves, node `n + t` is the cluster created by merge `t`,
/// and the root is the last node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n_leaves: usize,
    nodes: Vec<Node>,
}

impl Dendrogram {
    /// Build from a complete merge sequence (scipy `Z` matrix semantics).
    ///
    /// # Panics
    /// If the merge list is not exactly `n_leaves − 1` long or references
    /// undefined clusters.
    pub fn from_merges(n_leaves: usize, merges: &[Merge]) -> Self {
        assert!(n_leaves >= 1);
        assert_eq!(
            merges.len(),
            n_leaves.saturating_sub(1),
            "incomplete merge list"
        );
        let mut nodes: Vec<Node> = (0..n_leaves).map(|index| Node::Leaf { index }).collect();
        for (t, m) in merges.iter().enumerate() {
            let id = n_leaves + t;
            assert!(
                m.a < id && m.b < id && m.a != m.b,
                "merge {t} references invalid clusters"
            );
            let count = Self::count_of(&nodes, m.a) + Self::count_of(&nodes, m.b);
            debug_assert_eq!(count, m.size, "merge {t} size mismatch");
            nodes.push(Node::Internal {
                left: m.a,
                right: m.b,
                height: m.distance,
                count,
            });
        }
        Dendrogram { n_leaves, nodes }
    }

    fn count_of(nodes: &[Node], id: usize) -> usize {
        match nodes[id] {
            Node::Leaf { .. } => 1,
            Node::Internal { count, .. } => count,
        }
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The root node id.
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Access a node.
    pub fn node(&self, id: usize) -> &Node {
        &self.nodes[id]
    }

    /// The height of the root merge (0 for a single leaf).
    pub fn max_height(&self) -> f64 {
        match self.nodes[self.root()] {
            Node::Leaf { .. } => 0.0,
            Node::Internal { height, .. } => height,
        }
    }

    /// Leaves in dendrogram display order (depth-first, left child first) —
    /// the order the paper's figures list the cuisines in.
    pub fn leaf_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.n_leaves);
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            match self.nodes[id] {
                Node::Leaf { index } => order.push(index),
                Node::Internal { left, right, .. } => {
                    // Right pushed first so left is visited first.
                    stack.push(right);
                    stack.push(left);
                }
            }
        }
        order
    }

    /// Cophenetic distance matrix: the distance between two leaves is the
    /// height of their lowest common ancestor.
    pub fn cophenetic(&self) -> CondensedMatrix {
        let mut m = CondensedMatrix::from_fn(self.n_leaves, |_, _| 0.0);
        // Leaf sets bottom-up; pairs across (left, right) get the height.
        let mut leafsets: Vec<Vec<usize>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let set = match *node {
                Node::Leaf { index } => vec![index],
                Node::Internal {
                    left,
                    right,
                    height,
                    ..
                } => {
                    for &a in &leafsets[left] {
                        for &b in &leafsets[right] {
                            m.set(a, b, height);
                        }
                    }
                    let mut s = leafsets[left].clone();
                    s.extend_from_slice(&leafsets[right]);
                    s
                }
            };
            leafsets.push(set);
        }
        m
    }

    /// Flat clusters obtained by cutting at `height`: leaves joined by
    /// merges with `distance <= height` share a label. Labels are dense,
    /// in leaf-index order of first occurrence.
    pub fn cut_at_height(&self, height: f64) -> Vec<usize> {
        let mut parent: Vec<usize> = (0..self.nodes.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (id, node) in self.nodes.iter().enumerate() {
            if let Node::Internal {
                left,
                right,
                height: h,
                ..
            } = *node
            {
                if h <= height {
                    let rl = find(&mut parent, left);
                    let rr = find(&mut parent, right);
                    parent[rl] = id;
                    parent[rr] = id;
                }
            }
        }
        let mut root_label: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        (0..self.n_leaves)
            .map(|leaf| {
                let r = find(&mut parent, leaf);
                let next = root_label.len();
                *root_label.entry(r).or_insert(next)
            })
            .collect()
    }

    /// Flat clusters with exactly `k` groups: undo the last `k − 1`
    /// merges (internal nodes are stored in merge order). Labels are
    /// dense, assigned in leaf-index order of first occurrence.
    ///
    /// # Panics
    /// If `k` is 0 or exceeds the number of leaves.
    pub fn cut_k(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n_leaves, "k must be in 1..=n_leaves");
        let mut parent: Vec<usize> = (0..self.nodes.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        // Apply the first n - k merges (nodes n .. 2n - k - 1).
        let applied = self.n_leaves.saturating_sub(k);
        for t in 0..applied {
            let id = self.n_leaves + t;
            if let Node::Internal { left, right, .. } = self.nodes[id] {
                let rl = find(&mut parent, left);
                let rr = find(&mut parent, right);
                parent[rl] = id;
                parent[rr] = id;
            }
        }
        let mut root_label: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        (0..self.n_leaves)
            .map(|leaf| {
                let r = find(&mut parent, leaf);
                let next = root_label.len();
                *root_label.entry(r).or_insert(next)
            })
            .collect()
    }

    /// Render as an ASCII tree, heights annotated on internal nodes.
    ///
    /// ```text
    /// ─┬ h=6.00
    ///  ├─┬ h=3.00
    ///  │ ├─┬ h=1.00
    ///  │ │ ├── a
    ///  │ │ └── b
    ///  │ └── c
    ///  └── d
    /// ```
    pub fn render_ascii(&self, labels: &[String]) -> String {
        assert_eq!(labels.len(), self.n_leaves, "one label per leaf");
        let mut out = String::new();
        self.render_node(self.root(), "", "─", "", labels, &mut out);
        out
    }

    fn render_node(
        &self,
        id: usize,
        prefix: &str,
        connector: &str,
        child_prefix: &str,
        labels: &[String],
        out: &mut String,
    ) {
        match self.nodes[id] {
            Node::Leaf { index } => {
                out.push_str(&format!("{prefix}{connector}── {}\n", labels[index]));
            }
            Node::Internal {
                left,
                right,
                height,
                ..
            } => {
                out.push_str(&format!("{prefix}{connector}┬ h={height:.3}\n"));
                self.render_node(
                    left,
                    &format!("{child_prefix} "),
                    "├─",
                    &format!("{child_prefix} │"),
                    labels,
                    out,
                );
                self.render_node(
                    right,
                    &format!("{child_prefix} "),
                    "└─",
                    &format!("{child_prefix}  "),
                    labels,
                    out,
                );
            }
        }
    }

    /// Graphviz DOT export: leaves as boxes, merges as circles labelled
    /// with their height. Render with `dot -Tsvg`.
    pub fn to_dot(&self, labels: &[String]) -> String {
        assert_eq!(labels.len(), self.n_leaves, "one label per leaf");
        let mut out = String::from("digraph dendrogram {\n  rankdir=LR;\n  node [fontsize=10];\n");
        for (id, node) in self.nodes.iter().enumerate() {
            match *node {
                Node::Leaf { index } => {
                    out.push_str(&format!(
                        "  n{id} [shape=box, label=\"{}\"];\n",
                        labels[index].replace('"', "'")
                    ));
                }
                Node::Internal {
                    left,
                    right,
                    height,
                    ..
                } => {
                    out.push_str(&format!(
                        "  n{id} [shape=circle, label=\"{height:.2}\"];\n  n{id} -> n{left};\n  n{id} -> n{right};\n"
                    ));
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Newick export (heights become branch lengths; leaf names must not
    /// contain Newick metacharacters).
    pub fn to_newick(&self, labels: &[String]) -> String {
        assert_eq!(labels.len(), self.n_leaves, "one label per leaf");
        let mut s = self.newick_node(self.root(), self.max_height(), labels);
        s.push(';');
        s
    }

    fn newick_node(&self, id: usize, parent_height: f64, labels: &[String]) -> String {
        match self.nodes[id] {
            Node::Leaf { index } => {
                format!(
                    "{}:{:.6}",
                    labels[index].replace([' ', ','], "_"),
                    parent_height
                )
            }
            Node::Internal {
                left,
                right,
                height,
                ..
            } => {
                let l = self.newick_node(left, height, labels);
                let r = self.newick_node(right, height, labels);
                format!("({l},{r}):{:.6}", (parent_height - height).max(0.0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::Metric;
    use crate::hac::{linkage, LinkageMethod};

    fn line_tree() -> Dendrogram {
        let pts = vec![vec![0.0], vec![1.0], vec![4.0], vec![10.0]];
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        Dendrogram::from_merges(4, &linkage(&d, LinkageMethod::Single))
    }

    #[test]
    fn structure_and_counts() {
        let t = line_tree();
        assert_eq!(t.n_leaves(), 4);
        assert_eq!(t.root(), 6);
        assert!((t.max_height() - 6.0).abs() < 1e-12);
        match *t.node(t.root()) {
            Node::Internal { count, .. } => assert_eq!(count, 4),
            _ => panic!("root must be internal"),
        }
    }

    #[test]
    fn leaf_order_contains_each_leaf_once() {
        let t = line_tree();
        let mut order = t.leaf_order();
        assert_eq!(order.len(), 4);
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn leaf_order_keeps_merged_leaves_adjacent() {
        let t = line_tree();
        let order = t.leaf_order();
        let pos = |x: usize| order.iter().position(|&o| o == x).unwrap();
        // 0 and 1 merged first -> adjacent.
        assert_eq!(pos(0).abs_diff(pos(1)), 1);
    }

    #[test]
    fn cophenetic_distances_are_lca_heights() {
        let t = line_tree();
        let c = t.cophenetic();
        assert!((c.get(0, 1) - 1.0).abs() < 1e-12);
        assert!((c.get(0, 2) - 3.0).abs() < 1e-12);
        assert!((c.get(1, 2) - 3.0).abs() < 1e-12);
        assert!((c.get(0, 3) - 6.0).abs() < 1e-12);
        // Ultrametric: max of the two "sides" equals the third.
        for i in 0..4 {
            for j in (i + 1)..4 {
                for k in (j + 1)..4 {
                    let (a, b, c3) = (c.get(i, j), c.get(i, k), c.get(j, k));
                    let mut v = [a, b, c3];
                    v.sort_by(|x, y| x.partial_cmp(y).unwrap());
                    assert!((v[1] - v[2]).abs() < 1e-9, "ultrametric violated");
                }
            }
        }
    }

    #[test]
    fn cut_k_matches_hac_cut_k() {
        let pts = vec![vec![0.0], vec![1.0], vec![4.0], vec![10.0], vec![11.5]];
        let d = CondensedMatrix::pdist(&pts, Metric::Euclidean);
        let merges = linkage(&d, LinkageMethod::Average);
        let tree = Dendrogram::from_merges(5, &merges);
        for k in 1..=5 {
            assert_eq!(tree.cut_k(k), crate::hac::cut_k(5, &merges, k), "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n_leaves")]
    fn cut_k_rejects_zero() {
        let _ = line_tree().cut_k(0);
    }

    #[test]
    fn cut_at_height_partitions() {
        let t = line_tree();
        assert_eq!(t.cut_at_height(0.5), vec![0, 1, 2, 3]);
        let at2 = t.cut_at_height(2.0);
        assert_eq!(at2[0], at2[1]);
        assert_ne!(at2[1], at2[2]);
        let all = t.cut_at_height(100.0);
        assert!(all.iter().all(|&l| l == 0));
    }

    #[test]
    fn ascii_render_mentions_every_label_and_height() {
        let t = line_tree();
        let labels: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let art = t.render_ascii(&labels);
        for l in &labels {
            assert!(art.contains(l.as_str()), "missing {l} in:\n{art}");
        }
        assert!(art.contains("h=6.000"));
        assert!(art.contains("h=1.000"));
        assert_eq!(art.lines().count(), 7, "4 leaves + 3 internal nodes");
    }

    #[test]
    fn newick_is_balanced_and_terminated() {
        let t = line_tree();
        let labels: Vec<String> = ["a", "b", "c d", "e"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let nw = t.to_newick(&labels);
        assert!(nw.ends_with(';'));
        assert_eq!(
            nw.matches('(').count(),
            nw.matches(')').count(),
            "unbalanced parens in {nw}"
        );
        assert!(nw.contains("c_d"), "spaces escaped");
    }

    #[test]
    fn dot_export_is_well_formed() {
        let t = line_tree();
        let labels: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let dot = t.to_dot(&labels);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        // 4 leaves + 3 internal nodes; each internal has 2 edges.
        assert_eq!(dot.matches("shape=box").count(), 4);
        assert_eq!(dot.matches("shape=circle").count(), 3);
        assert_eq!(dot.matches("->").count(), 6);
    }

    #[test]
    fn single_leaf_tree() {
        let t = Dendrogram::from_merges(1, &[]);
        assert_eq!(t.leaf_order(), vec![0]);
        assert_eq!(t.max_height(), 0.0);
        assert_eq!(t.cut_at_height(1.0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "incomplete merge list")]
    fn wrong_merge_count_panics() {
        let _ = Dendrogram::from_merges(3, &[]);
    }
}
