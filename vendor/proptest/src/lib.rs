//! Offline stand-in for `proptest`.
//!
//! Same macro surface (`proptest!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`, `prop_oneof!`) and strategy combinators the workspace
//! uses (ranges, `Just`, tuples, `prop::collection::vec`, `prop_map`),
//! but with plain seeded random sampling: **no shrinking** — a failing
//! case panics with the values baked into the assertion message instead
//! of a minimised counterexample. Case counts honour
//! `ProptestConfig::with_cases`. Runs are deterministic per test
//! (fixed base seed + case index).

pub mod strategy;

/// Runner configuration.
pub mod test_runner {
    /// Mirror of proptest's `Config` (the `cases` knob only).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Strategy namespace (`prop::collection::vec`, ...).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::{vec, SizeRange, VecStrategy};
    }
}

/// The things a test module needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Define property tests: same grammar as proptest's macro for the
/// `name(binding in strategy, ...)` form.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( #[test] fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                // Deterministic per-test seed: stable across runs, distinct
                // across test names.
                let mut __seed: u64 = 0xcbf29ce484222325;
                for b in stringify!($name).bytes() {
                    __seed ^= b as u64;
                    __seed = __seed.wrapping_mul(0x100000001b3);
                }
                for __case in 0..config.cases {
                    let mut __rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(
                        __seed ^ (__case as u64).wrapping_mul(0x9E3779B97F4A7C15),
                    );
                    $( let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng); )+
                    let __outcome: ::std::result::Result<(), ()> = (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })();
                    let _ = __outcome;
                }
            }
        )*
    };
}

/// Assert inside a property test (panics; no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assertion inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Discard the current case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies of one type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strat),+])
    };
}
