//! Value-generation strategies.
//!
//! A [`Strategy`] knows how to draw one value from a seeded RNG. This is
//! the generation half of proptest's trait (no `ValueTree`, no
//! shrinking), covering the combinators used by the workspace: numeric
//! ranges, [`Just`], tuples, [`vec`], [`Strategy::prop_map`] and
//! [`Union`] (via `prop_oneof!`).

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::Rng;

/// Something that can generate values of type `Value` from an RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Filter generated values; draws are retried (bounded) until `f`
    /// accepts one.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, whence }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Send + Sync + 'static,
    {
        BoxedStrategy { inner: Arc::new(self) }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: Arc<dyn Strategy<Value = T> + Send + Sync>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: no value accepted after 1000 draws ({})", self.whence);
    }
}

/// Uniform choice among several strategies of one value type
/// (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<S> {
    options: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// A union over `options`, each equally likely.
    ///
    /// # Panics
    /// If `options` is empty.
    pub fn new(options: Vec<S>) -> Self {
        assert!(!options.is_empty(), "Union of zero strategies");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> S::Value {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Inclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// A strategy producing `Vec`s of values from `element`
/// (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Output of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let x = (3usize..9).generate(&mut r);
            assert!((3..9).contains(&x));
            let f = (-2.0f64..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_sizes_and_elements_in_range() {
        let s = vec(0u32..5, 2..7);
        let mut r = rng();
        for _ in 0..500 {
            let v = s.generate(&mut r);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        let fixed = vec(0u32..5, 3usize);
        assert_eq!(fixed.generate(&mut r).len(), 3);
    }

    #[test]
    fn map_union_tuple_and_just_compose() {
        let s = (0usize..3, Just(10u32)).prop_map(|(a, b)| a as u32 + b);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((10..13).contains(&v));
        }
        let u = Union::new(vec![Just(1), Just(2)]);
        let mut seen = [false; 2];
        for _ in 0..100 {
            seen[u.generate(&mut r) - 1] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn filter_retries_until_accepted() {
        let s = (0u32..100).prop_filter("even", |x| x % 2 == 0);
        let mut r = rng();
        for _ in 0..200 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }
}
