//! Offline stand-in for `serde`, API-compatible with the subset this
//! workspace uses.
//!
//! The real serde is a zero-cost trait framework over pluggable data
//! formats; this shim collapses that generality into a single JSON-shaped
//! [`Value`] tree (the only format the workspace serializes to). The
//! `#[derive(Serialize, Deserialize)]` macros come from the sibling
//! `serde_derive` shim and follow serde's external JSON conventions:
//!
//! * named structs ⇒ objects, field order preserved;
//! * newtype structs ⇒ their inner value;
//! * tuple structs ⇒ arrays;
//! * unit enum variants ⇒ `"Variant"` strings;
//! * data-carrying variants ⇒ `{"Variant": ...}` single-key objects;
//! * `#[serde(skip)]` fields are omitted and rebuilt with `Default`.

pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into a JSON-shaped value.
    fn serialize(&self) -> Value;
}

/// Deserialization from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a JSON-shaped value.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

/// Error raised by deserialization (and by JSON parsing in `serde_json`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a free-form message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error { msg: m.into() }
    }

    /// "expected X while deserializing Y" convenience constructor.
    pub fn expected(what: &str, while_deserializing: &str) -> Self {
        Error { msg: format!("expected {what} while deserializing {while_deserializing}") }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Fetch and deserialize a required object field (derive-macro helper).
pub fn __de_field<T: Deserialize>(map: &Map, key: &str, ty: &str) -> Result<T, Error> {
    match map.get(key) {
        Some(v) => T::deserialize(v)
            .map_err(|e| Error::msg(format!("{ty}.{key}: {e}"))),
        None => Err(Error::msg(format!("missing field `{key}` while deserializing {ty}"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Number(Number::I64(*self as i64)) }
        }
    )*};
}
macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value { Value::Number(Number::U64(*self as u64)) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}
impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}
impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}
impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys for deterministic output (HashMap order is random).
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut m = Map::new();
        for (k, v) in entries {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}
impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i128()
                    .ok_or_else(|| Error::expected("integer", stringify!($t)))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::msg(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", "f64"))
    }
}
impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize(v)? as f32)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("boolean", "bool")),
        }
    }
}
impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = String::deserialize(v)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-character string", "char")),
        }
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}
impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::expected("array", "Vec")),
        }
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::deserialize(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! de_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::deserialize(&items[$n])?,)+))
                    }
                    _ => Err(Error::expected(
                        concat!("array of length ", stringify!($len)),
                        "tuple",
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
    (5: 0 A, 1 B, 2 C, 3 D, 4 E)
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::expected("object", "HashMap")),
        }
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            _ => Err(Error::expected("object", "BTreeMap")),
        }
    }
}
