//! The JSON-shaped value tree shared by `serde` and `serde_json`.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON number: integers keep their exact representation, everything
/// else is an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

/// An order-preserving string-keyed map (JSON object).
///
/// Lookups are linear scans, which is the right trade-off for the small
/// objects produced by struct serialization; order preservation makes
/// serialized output deterministic, which the atlas cache relies on for
/// byte-identical repeated responses.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map { entries: Vec::new() }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: String, value: Value) {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// The first entry (used for single-key enum-variant objects).
    pub fn first(&self) -> Option<(&String, &Value)> {
        self.entries.first().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The object form, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The array form, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string form, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64` (accepts any number).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n as f64),
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::F64(n)) => Some(*n),
            _ => None,
        }
    }

    /// Integer value as `i128` (exact; rejects floats with fractions).
    pub fn as_i128(&self) -> Option<i128> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n as i128),
            Value::Number(Number::U64(n)) => Some(*n as i128),
            Value::Number(Number::F64(n)) if n.fract() == 0.0 && n.is_finite() => {
                Some(*n as i128)
            }
            _ => None,
        }
    }

    /// Signed integer, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        self.as_i128().and_then(|n| i64::try_from(n).ok())
    }

    /// Unsigned integer, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_i128().and_then(|n| u64::try_from(n).ok())
    }

    /// Boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member access, `None` when absent or not an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }

    /// Serialize to compact JSON text.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, None, 0);
        out
    }

    /// Serialize to pretty-printed JSON text (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out, Some(2), 0);
        out
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// `value["key"]` — panics when the key is absent (matches `serde_json`
/// only loosely: reads of absent keys panic instead of returning null).
impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no key {key:?} in value"))
    }
}

/// `value["key"] = ...` — inserts the key when absent.
impl IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Map::new());
        }
        match self {
            Value::Object(m) => {
                if m.get(key).is_none() {
                    m.insert(key.to_string(), Value::Null);
                }
                m.get_mut(key).unwrap()
            }
            _ => panic!("cannot index non-object value with a string key"),
        }
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => &a[idx],
            _ => panic!("cannot index non-array value with {idx}"),
        }
    }
}

impl IndexMut<usize> for Value {
    fn index_mut(&mut self, idx: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[idx],
            _ => panic!("cannot index non-array value with {idx}"),
        }
    }
}

// ---------------------------------------------------------------------------
// JSON writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    use std::fmt::Write;
    match n {
        Number::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Number::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Number::F64(f) => {
            if f.is_finite() {
                // Rust's Display prints the shortest round-tripping form.
                let _ = write!(out, "{f}");
            } else {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::Null);
        m.insert("a".into(), Value::Bool(true));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn display_escapes_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(v.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn float_display_round_trips_integral_values() {
        let v = Value::Number(Number::F64(1.0));
        assert_eq!(v.to_string(), "1");
        assert_eq!(Value::Number(Number::F64(0.25)).to_string(), "0.25");
    }

    #[test]
    fn index_mut_inserts_missing_keys() {
        let mut v = Value::Object(Map::new());
        v["x"] = Value::Bool(true);
        assert_eq!(v["x"], Value::Bool(true));
    }
}
