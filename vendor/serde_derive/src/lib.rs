//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! shapes this workspace actually uses, without `syn`/`quote` (parsing is
//! done directly over `proc_macro::TokenTree`s, code generation via
//! string building):
//!
//! * structs with named fields ⇒ JSON objects;
//! * newtype tuple structs ⇒ transparent (the inner value);
//! * longer tuple structs ⇒ JSON arrays;
//! * enums with unit variants ⇒ `"Variant"` strings;
//! * enums with tuple/struct variants ⇒ `{"Variant": ...}` objects
//!   (serde's externally-tagged default);
//! * `#[serde(skip)]` on named fields (omitted on write, `Default` on
//!   read).
//!
//! Generic types and the rest of serde's attribute language are
//! intentionally unsupported and produce a compile error naming the
//! limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,   // named field name, or tuple index as a string
    skip: bool,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Unit,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Input {
    name: String,
    shape: Shape,
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .expect("serde_derive generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs(&toks, &mut i);
    skip_visibility(&toks, &mut i);

    let kind = match ident_at(&toks, i) {
        Some(k) if k == "struct" || k == "enum" => {
            i += 1;
            k
        }
        _ => return Err("serde_derive: expected `struct` or `enum`".into()),
    };
    let name = ident_at(&toks, i).ok_or("serde_derive: expected type name")?;
    i += 1;

    // Reject generics: none of the workspace's serialized types need them.
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        ));
    }

    let shape = if kind == "struct" {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            _ => return Err("serde_derive: malformed struct body".into()),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err("serde_derive: malformed enum body".into()),
        }
    };

    Ok(Input { name, shape })
}

fn ident_at(toks: &[TokenTree], i: usize) -> Option<String> {
    match toks.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

/// Skip `#[...]` attribute groups, reporting whether any was `#[serde(skip)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    while matches!(&toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = toks.get(*i + 1) {
            if is_serde_skip(g.stream()) {
                skip = true;
            }
            *i += 2;
        } else {
            break;
        }
    }
    skip
}

fn is_serde_skip(attr: TokenStream) -> bool {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip"))
        }
        _ => false,
    }
}

fn skip_visibility(toks: &[TokenTree], i: &mut usize) {
    if matches!(ident_at(toks, *i).as_deref(), Some("pub")) {
        *i += 1;
        // `pub(crate)` / `pub(in ...)`.
        if matches!(&toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Parse `{ name: Type, ... }` field lists, honouring `#[serde(skip)]`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let skip = skip_attrs(&toks, &mut i);
        skip_visibility(&toks, &mut i);
        let name = ident_at(&toks, i).ok_or("serde_derive: expected field name")?;
        i += 1;
        match &toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("serde_derive: expected `:` after field `{name}`")),
        }
        skip_type(&toks, &mut i);
        fields.push(Field { name, skip });
        // Consume the trailing comma, if any.
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    Ok(fields)
}

/// Advance past one type, stopping at a top-level (angle-depth 0) comma.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while let Some(t) = toks.get(*i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

/// Count fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut saw_tokens_since_comma = true;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens_since_comma = false;
            }
            _ => saw_tokens_since_comma = true,
        }
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = ident_at(&toks, i).ok_or("serde_derive: expected variant name")?;
        i += 1;
        let shape = match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            _ => VariantShape::Unit,
        };
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            return Err("serde_derive shim: explicit discriminants are not supported".into());
        }
        if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from("let mut map = ::serde::Map::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "map.insert({n:?}.to_string(), ::serde::Serialize::serialize(&self.{n}));\n",
                    n = f.name
                ));
            }
            s.push_str("::serde::Value::Object(map)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String({vn:?}.to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binders}) => {{\n\
                             let mut map = ::serde::Map::new();\n\
                             map.insert({vn:?}.to_string(), {inner});\n\
                             ::serde::Value::Object(map)\n\
                             }}\n",
                            binders = binders.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "inner.insert({n:?}.to_string(), ::serde::Serialize::serialize({n}));\n",
                                n = f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binders} }} => {{\n\
                             {inner}\
                             let mut map = ::serde::Map::new();\n\
                             map.insert({vn:?}.to_string(), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(map)\n\
                             }}\n",
                            binders = binders.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::NamedStruct(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::__de_field(obj, {n:?}, {name:?})?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", {name:?}))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", {name:?}))?;\n\
                 if items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::msg(format!(\"expected {{}} elements for {name}, got {{}}\", {n}, items.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::Unit => format!("let _ = v;\n::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let ctor = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(inner)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::deserialize(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "{{\n\
                                 let items = inner.as_array().ok_or_else(|| ::serde::Error::expected(\"array\", {name:?}))?;\n\
                                 if items.len() != {n} {{ return ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array\", {name:?})); }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({items}))\n\
                                 }}",
                                items = items.join(", ")
                            )
                        };
                        data_arms.push_str(&format!("{vn:?} => {ctor},\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{n}: ::serde::__de_field(obj, {n:?}, {name:?})?,\n",
                                    n = f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let obj = inner.as_object().ok_or_else(|| ::serde::Error::expected(\"object\", {name:?}))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{\n{inits}}})\n\
                             }},\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n\
                 {unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }},\n\
                 ::serde::Value::Object(m) => {{\n\
                 let (key, inner) = m.first().ok_or_else(|| ::serde::Error::expected(\"variant object\", {name:?}))?;\n\
                 let _ = inner;\n\
                 match key.as_str() {{\n\
                 {data_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(format!(\"unknown {name} variant {{other:?}}\"))),\n\
                 }}\n\
                 }}\n\
                 _ => ::std::result::Result::Err(::serde::Error::expected(\"string or single-key object\", {name:?})),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn deserialize(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}
