//! Offline stand-in for `serde_json`: a strict JSON text layer over the
//! `serde` shim's [`Value`] tree.
//!
//! Supports the workspace's surface: [`to_string`], [`to_string_pretty`],
//! [`to_vec`], [`to_writer`], [`from_str`], [`from_slice`],
//! [`from_reader`], [`to_value`], [`from_value`], the [`json!`] macro and
//! [`Value`] indexing.

use std::io::{Read, Write};

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

/// `Result` alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize().to_json())
}

/// Serialize a value to pretty JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.serialize().to_json_pretty())
}

/// Serialize a value to a JSON byte vector.
pub fn to_vec<T: serde::Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Serialize a value as JSON into a writer.
pub fn to_writer<W: Write, T: serde::Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    writer
        .write_all(to_string(value)?.as_bytes())
        .map_err(|e| Error::msg(format!("write error: {e}")))
}

/// Parse JSON text into a value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::deserialize(&value)
}

/// Parse JSON bytes into a value.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Read a value as JSON from a reader.
pub fn from_reader<R: Read, T: serde::Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader
        .read_to_string(&mut buf)
        .map_err(|e| Error::msg(format!("read error: {e}")))?;
    from_str(&buf)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.serialize())
}

/// Rebuild a deserializable value from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T> {
    T::deserialize(value)
}

/// Build a [`Value`] from a JSON-ish literal.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:tt : $val:tt),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $( map.insert($key.to_string(), $crate::json!($val)); )*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! literal serialization")
    };
}

/// Parse a JSON document into a [`Value`] (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON document"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pair handling.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined =
                                        0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Decode one UTF-8 scalar from the source.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("bad number"));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("42").unwrap(), Value::Number(Number::I64(42)));
        assert_eq!(parse_value("-7").unwrap(), Value::Number(Number::I64(-7)));
        assert_eq!(
            parse_value("2.5e2").unwrap(),
            Value::Number(Number::F64(250.0))
        );
        assert_eq!(
            parse_value("\"a\\nb\"").unwrap(),
            Value::String("a\nb".into())
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{not json", "[1,2", "{\"a\":}", "tru", "1 2", "", "\"\\x\""] {
            assert!(parse_value(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn round_trips_nested_structures() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":false}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse_value(r#""\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "é😀");
    }

    #[test]
    fn json_macro_builds_values() {
        let v = json!({"n": 99, "list": [1, 2], "flag": true, "nothing": null});
        assert_eq!(v["n"].as_u64(), Some(99));
        assert_eq!(v["list"][1].as_u64(), Some(2));
        assert_eq!(v["flag"].as_bool(), Some(true));
        assert!(v["nothing"].is_null());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse_value(&deep).is_err());
    }
}
