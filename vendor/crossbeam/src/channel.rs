//! MPMC channels with crossbeam's API shape and disconnect semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    cap: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a bounded channel of capacity `cap`.
///
/// A zero capacity is rounded up to one (the real crossbeam implements a
/// rendezvous channel for zero; the worker pool here never uses it).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make(Some(cap.max(1)))
}

/// Create an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            cap,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { chan: chan.clone() }, Receiver { chan })
}

/// Error returned when sending into a channel with no receivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by `try_send`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned when receiving from an empty channel with no senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty, disconnected channel")
    }
}

/// Error returned by `try_recv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by `recv_timeout`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived in time.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// The sending half; clonable (multi-producer).
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half; clonable (multi-consumer).
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().senders += 1;
        Sender { chan: self.chan.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake receivers so they observe the disconnect.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().receivers += 1;
        Receiver { chan: self.chan.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Send, blocking while the channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            let full = inner.cap.is_some_and(|c| inner.queue.len() >= c);
            if !full {
                inner.queue.push_back(value);
                self.chan.not_empty.notify_one();
                return Ok(());
            }
            inner = self.chan.not_full.wait(inner).unwrap();
        }
    }

    /// Send without blocking.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if inner.cap.is_some_and(|c| inner.queue.len() >= c) {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receive, blocking while the channel is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.chan.not_empty.wait(inner).unwrap();
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        match inner.queue.pop_front() {
            Some(v) => {
                self.chan.not_full.notify_one();
                Ok(v)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Receive with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap();
            inner = guard;
        }
    }

    /// Drain the channel as an iterator that ends on disconnect.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }

    /// Number of queued messages (snapshot).
    pub fn len(&self) -> usize {
        self.chan.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty (snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Blocking iterator over received messages.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = bounded::<u32>(4);
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        let (tx, rx) = bounded::<u32>(4);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        std::thread::scope(|s| {
            s.spawn(move || {
                tx.send(3).unwrap(); // must block until a recv frees a slot
            });
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        });
    }

    #[test]
    fn mpmc_under_contention_delivers_every_message_once() {
        let (tx, rx) = bounded(8);
        let n_senders = 4;
        let per_sender = 250;
        let received = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..n_senders {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per_sender {
                        tx.send(t * per_sender + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..3 {
                let rx = rx.clone();
                let received = &received;
                s.spawn(move || {
                    for v in rx.iter() {
                        received.lock().unwrap().push(v);
                    }
                });
            }
        });
        let mut got = received.into_inner().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..n_senders * per_sender).collect::<Vec<_>>());
    }

    #[test]
    fn recv_timeout_times_out_then_succeeds() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
    }
}
