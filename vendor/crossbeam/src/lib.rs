//! Offline stand-in for `crossbeam`, covering the workspace's surface:
//!
//! * [`scope`] — scoped threads, delegating to `std::thread::scope`
//!   (available since Rust 1.63, which post-dates crossbeam's original
//!   motivation) behind crossbeam's `Result`-returning signature;
//! * [`channel`] — MPMC bounded/unbounded channels built on
//!   `Mutex<VecDeque>` + `Condvar`, with crossbeam's disconnect
//!   semantics.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod channel;

/// A scope in which child threads may borrow from the enclosing stack
/// frame (mirror of `crossbeam::thread::Scope`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Wait for the thread to finish, returning its result (`Err` on
    /// panic, with the panic payload).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. As in crossbeam, the closure receives the
    /// scope again so it can spawn siblings.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handoff = Scope { inner: self.inner };
        ScopedJoinHandle { inner: self.inner.spawn(move || f(&handoff)) }
    }
}

/// Run `f` with a scope handle; all threads spawned in the scope are
/// joined before `scope` returns. Returns `Err` when `f` (or an
/// unhandled child panic propagated through joins) panicked — the same
/// observable contract as `crossbeam::scope`.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// `crossbeam::thread` module alias, matching the real crate layout.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads_and_borrows_stack() {
        let counter = AtomicUsize::new(0);
        let out = super::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|_| counter.fetch_add(1, Ordering::Relaxed)))
                .collect();
            handles.into_iter().filter_map(|h| h.join().ok()).count()
        })
        .unwrap();
        assert_eq!(out, 8);
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_via_reentrant_scope_handle() {
        let v = super::scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn panic_in_scope_body_is_an_err() {
        let r = super::scope(|s| {
            let h = s.spawn(|_| panic!("child"));
            h.join().expect("propagate");
        });
        assert!(r.is_err());
    }
}
