//! Offline stand-in for `criterion`.
//!
//! Mirrors the macro and builder surface the bench crate uses
//! (`criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`]) but measures with a plain wall-clock
//! loop: per benchmark it runs a short warm-up, then `sample_size`
//! timed samples, and prints mean/min/max to stdout. No statistical
//! analysis, no HTML reports, no comparison against saved baselines.
//!
//! Pass `--quick` (or set `CRITERION_QUICK=1`) to run every benchmark
//! for exactly one iteration — a smoke test that the bench code still
//! works.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level harness handle (configuration lives on the groups).
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some();
        Criterion { quick }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            quick: self.quick,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Run per-benchmark configuration and teardown (no-op here; exists
    /// for API parity).
    pub fn final_summary(&self) {}
}

/// Expected work per iteration, used to report rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter (the group name gives context).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a Criterion,
    quick: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (printing is incremental; parity no-op).
    pub fn finish(self) {}

    fn run(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher { elapsed: Duration::ZERO, iterations: 0 };
        if self.quick {
            f(&mut b);
            println!("  {id}: ok ({} iter, quick mode)", b.iterations.max(1));
            return;
        }
        // Warm-up sample, then timed samples.
        f(&mut b);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.elapsed = Duration::ZERO;
            b.iterations = 0;
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / b.iterations.max(1) as f64);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!(
            "  {id}: mean {} (min {}, max {}){rate}",
            fmt_time(mean),
            fmt_time(min),
            fmt_time(max)
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time one execution of `routine` (the shim runs exactly one
    /// iteration per sample; criterion's adaptive batching is omitted).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(out);
    }
}

/// Prevent the optimizer from deleting a value (std-backed).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Collect benchmark functions into a named runner group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks_and_counts_iterations() {
        let mut c = Criterion { quick: true };
        let mut hits = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.sample_size(3);
            g.bench_function("inc", |b| b.iter(|| hits += 1));
            g.finish();
        }
        assert!(hits >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("0.20").to_string(), "0.20");
    }

    #[test]
    fn full_mode_produces_samples() {
        let mut c = Criterion { quick: false };
        let mut g = c.benchmark_group("t2");
        g.sample_size(2)
            .throughput(Throughput::Elements(4))
            .bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
                b.iter(|| xs.iter().sum::<u64>())
            });
        g.finish();
    }
}
