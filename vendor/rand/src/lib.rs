//! Offline stand-in for `rand` 0.8.
//!
//! Implements the surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` — over
//! a xoshiro256++ generator seeded via SplitMix64. The stream differs
//! from the real `StdRng` (ChaCha12), so seeded sequences are *internally*
//! deterministic but not bit-compatible with upstream rand; the corpus
//! generator's calibration margins absorb the difference.

use std::ops::{Range, RangeInclusive};

/// Low-level 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// If the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// A sample of a [`Standard`]-distributed value (`f64` in `[0,1)`,
    /// full-range integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A Bernoulli draw with probability `p`.
    ///
    /// # Panics
    /// If `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one standard sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}
impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}
impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// `u64` → `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = widening_uniform(rng, span);
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = widening_uniform(rng, span);
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform draw in `[0, span)` by 64×64→128-bit widening multiply
/// (Lemire); bias is at most 2⁻⁶⁴ per draw, far below anything the
/// calibrated corpus can detect.
fn widening_uniform<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64();
    }
    ((rng.next_u64() as u128 * span) >> 64) as u64
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = unit_f64(rng.next_u64()) as $t;
                let v = self.start + (self.end - self.start) * unit;
                // Rounding can land exactly on the excluded endpoint.
                if v >= self.end { <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON) } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t)
            }
        }
    )*};
}
float_range!(f32, f64);

/// The standard generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic RNG: xoshiro256++ (not bit-compatible
    /// with upstream rand's ChaCha12-based `StdRng`; see crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Alias of [`StdRng`] (upstream's `SmallRng` is also xoshiro256++).
    pub type SmallRng = StdRng;

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream does for seed_from_u64.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let g = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn unit_floats_are_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
