//! Corpus round-trip: generate a synthetic RecipeDB corpus, save it as
//! JSON, export the flat transaction file, re-import everything, and show
//! that the mining pipeline produces identical pattern counts over the
//! reloaded corpus — i.e. the analysis is a pure function of the data.
//!
//! ```sh
//! cargo run --release --example corpus_io [output-dir]
//! ```

use cuisine_atlas::patterns::mine_all;
use recipedb::generator::{CorpusGenerator, GeneratorConfig};
use recipedb::{io, Cuisine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);
    std::fs::create_dir_all(&dir)?;

    let mut cfg = GeneratorConfig::paper_scale(0.02).with_seed(123);
    cfg.min_recipes_per_cuisine = 150;
    let db = CorpusGenerator::new(cfg).generate();
    println!("generated {} recipes", db.recipe_count());

    // JSON round trip.
    let json_path = dir.join("cuisine-corpus.json");
    io::save(&db, &json_path)?;
    let reloaded = io::load(&json_path)?;
    println!(
        "saved + reloaded {} ({} bytes)",
        json_path.display(),
        std::fs::metadata(&json_path)?.len()
    );
    assert_eq!(reloaded.recipe_count(), db.recipe_count());

    // Flat transaction export (one line per recipe) for external tools.
    let tx_path = dir.join("cuisine-transactions.tsv");
    io::export_transactions(&db, std::fs::File::create(&tx_path)?)?;
    println!("exported transactions to {}", tx_path.display());

    // Mining is a pure function of the corpus: identical pattern counts.
    let before = mine_all(&db, 0.2);
    let after = mine_all(&reloaded, 0.2);
    for (a, b) in before.iter().zip(&after) {
        assert_eq!(a.pattern_count(), b.pattern_count(), "{}", a.cuisine);
    }
    println!(
        "pattern counts identical after round trip (e.g. {}: {} patterns)",
        Cuisine::Japanese,
        before[Cuisine::Japanese.index()].pattern_count()
    );

    std::fs::remove_file(&json_path).ok();
    std::fs::remove_file(&tx_path).ok();
    Ok(())
}
