//! Authenticity fingerprints (paper §V.B): for a handful of cuisines,
//! print the most and least authentic ingredients — the positive and
//! negative tails that jointly form the "culinary fingerprint".
//!
//! ```sh
//! cargo run --release --example cuisine_fingerprints [cuisine name ...]
//! ```

use cuisine_atlas::{AtlasConfig, CuisineAtlas};
use recipedb::Cuisine;

fn main() {
    let requested: Vec<Cuisine> = {
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.is_empty() {
            vec![
                Cuisine::Japanese,
                Cuisine::Italian,
                Cuisine::IndianSubcontinent,
                Cuisine::UK,
            ]
        } else {
            args.iter()
                .map(|a| {
                    Cuisine::from_name(a).unwrap_or_else(|| {
                        eprintln!("unknown cuisine {a:?}; valid names:");
                        for c in Cuisine::ALL {
                            eprintln!("  {c}");
                        }
                        std::process::exit(1);
                    })
                })
                .collect()
        }
    };

    let atlas = CuisineAtlas::build(&AtlasConfig::quick(42));
    let matrix = atlas.authenticity_matrix();
    let db = atlas.db();

    for cuisine in requested {
        println!("=== {cuisine} ===");
        println!("  most authentic (over-represented vs the rest of the world):");
        for (tok, score) in matrix.most_authentic(cuisine, 8) {
            let name = db.catalog().token_name(tok).unwrap_or("?");
            println!("    {score:+.3}  {name}");
        }
        println!("  least authentic (conspicuously absent):");
        for (tok, score) in matrix.least_authentic(cuisine, 5) {
            let name = db.catalog().token_name(tok).unwrap_or("?");
            println!("    {score:+.3}  {name}");
        }
        println!();
    }
}
