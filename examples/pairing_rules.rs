//! Association-rule discovery inside one cuisine (paper §II/§IV lineage:
//! Agrawal-style rules over recipe transactions). Shows the strongest
//! `A ⇒ B` implications among a cuisine's frequent patterns — e.g. how
//! tightly sesame oil implies soy sauce in Korean recipes.
//!
//! ```sh
//! cargo run --release --example pairing_rules ["Korean"]
//! ```

use cuisine_atlas::{AtlasConfig, CuisineAtlas};
use pattern_mining::rules::{induce_rules, RuleConfig};
use recipedb::catalog::TokenId;
use recipedb::Cuisine;

fn main() {
    let cuisine = std::env::args()
        .nth(1)
        .map(|a| {
            Cuisine::from_name(&a).unwrap_or_else(|| {
                eprintln!("unknown cuisine {a:?}");
                std::process::exit(1);
            })
        })
        .unwrap_or(Cuisine::Korean);

    let atlas = CuisineAtlas::build(&AtlasConfig::quick(42));
    let cp = &atlas.patterns()[cuisine.index()];
    let db = atlas.db();

    let config = RuleConfig {
        min_confidence: 0.6,
        min_lift: 1.05,
    };
    let rules = induce_rules(&cp.itemsets, cp.n_recipes, &config);

    println!(
        "{} — {} frequent patterns over {} recipes; {} rules at confidence ≥ {:.0}%, lift > {:.2}",
        cuisine,
        cp.itemsets.len(),
        cp.n_recipes,
        rules.len(),
        config.min_confidence * 100.0,
        config.min_lift,
    );
    let fmt = |ids: &[u32]| -> String {
        ids.iter()
            .filter_map(|&t| db.catalog().token_name(TokenId(t)))
            .collect::<Vec<_>>()
            .join(" + ")
    };
    for rule in rules.iter().take(15) {
        println!(
            "  {:<40} => {:<28} conf {:.2}  lift {:.2}  supp {:.2}",
            fmt(rule.antecedent.items()),
            fmt(rule.consequent.items()),
            rule.confidence,
            rule.lift,
            rule.support,
        );
    }
}
