//! The paper's §VIII future-work questions, answered on the synthetic
//! corpus: how much do processes/utensils matter, what does alias merging
//! change, how stable are the headline claims under resampling, and how
//! sensitive is the tree to the linkage method.
//!
//! ```sh
//! cargo run --release --example future_work
//! ```

use cuisine_atlas::extensions;
use cuisine_atlas::{AtlasConfig, CuisineAtlas};

fn main() {
    let atlas = CuisineAtlas::build(&AtlasConfig::quick(42));

    println!("{}", extensions::kinds_ablation(&atlas));
    println!("{}", extensions::alias_ablation(&atlas));
    println!("{}", extensions::bootstrap_report(&atlas, 20, 7));
    println!("{}", extensions::linkage_sensitivity(&atlas));
}
