//! A playful application of the atlas: plan a "fusion menu" by finding
//! the cuisine pairs whose pattern trees sit closest together, listing
//! the signature patterns they share, and borrowing each cuisine's
//! strongest ingredient pairings as course ideas.
//!
//! ```sh
//! cargo run --release --example fusion_menu
//! ```

use clustering::Metric;
use cuisine_atlas::pairing::PairingAnalysis;
use cuisine_atlas::{AtlasConfig, CuisineAtlas};
use recipedb::Cuisine;

fn main() {
    let atlas = CuisineAtlas::build(&AtlasConfig::quick(42));
    let tree = atlas.pattern_tree(Metric::Jaccard);
    let features = atlas.features();

    // Rank cuisine pairs by pattern-tree proximity.
    let coph = tree.dendrogram.cophenetic();
    let mut pairs: Vec<(Cuisine, Cuisine, f64)> = Vec::new();
    for (i, j, _) in tree.distances.iter_pairs() {
        pairs.push((Cuisine::ALL[i], Cuisine::ALL[j], coph.get(i, j)));
    }
    pairs.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));

    // Document frequency per pattern: anchors should be patterns the pair
    // shares with few OTHER cuisines, not global staples.
    let mut df = vec![0usize; features.vocab_size()];
    for set in &features.pattern_sets {
        for &code in set {
            df[code as usize] += 1;
        }
    }

    println!("Closest culinary neighbours (Jaccard pattern tree):\n");
    for (a, b, h) in pairs.iter().take(5) {
        let shared = features.shared_patterns(a.index(), b.index());
        println!("  {a} × {b}   (merge height {h:.3}, {shared} shared patterns)");

        // Distinctive shared patterns make natural fusion anchors.
        let sa: std::collections::BTreeSet<u32> =
            features.pattern_sets[a.index()].iter().copied().collect();
        let sb: std::collections::BTreeSet<u32> =
            features.pattern_sets[b.index()].iter().copied().collect();
        let mut anchors: Vec<(usize, &str)> = sa
            .intersection(&sb)
            .map(|&code| {
                (
                    df[code as usize],
                    features.vocabulary[code as usize].as_str(),
                )
            })
            .filter(|&(d, _)| d <= 8) // shared by few cuisines -> distinctive
            .collect();
        anchors.sort();
        let names: Vec<&str> = anchors.iter().map(|&(_, p)| p).take(4).collect();
        if !names.is_empty() {
            println!("      anchors: {}", names.join(" | "));
        }
    }

    // Course ideas: each cuisine's strongest pairing.
    let menu_cuisines = [pairs[0].0, pairs[0].1, pairs[1].0];
    println!("\nCourse ideas from the strongest pairings:");
    for c in menu_cuisines {
        let analysis = PairingAnalysis::analyze(atlas.db(), c, 30, 10);
        if let Some(p) = analysis.strongest(1).first() {
            println!(
                "  {c}: {} + {}  (PMI {:+.2})",
                atlas.db().catalog().token_name(p.a).unwrap_or("?"),
                atlas.db().catalog().token_name(p.b).unwrap_or("?"),
                p.pmi
            );
        }
    }
}
