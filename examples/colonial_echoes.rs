//! The paper's headline finding, as a runnable story: culinary trees
//! deviate from geography exactly where history says they should.
//!
//! Canada sits next to the US on the map but its cuisine clusters with
//! French food (Canada was a French colony); the Indian Subcontinent's
//! spice profile pulls it toward Northern Africa rather than its Thai and
//! Southeast-Asian neighbours.
//!
//! ```sh
//! cargo run --release --example colonial_echoes
//! ```

use clustering::Metric;
use cuisine_atlas::compare::{geo_agreement, historical_claims};
use cuisine_atlas::{AtlasConfig, CuisineAtlas};
use recipedb::Cuisine;

fn main() {
    let atlas = CuisineAtlas::build(&AtlasConfig::quick(42));
    let geo = atlas.geographic_tree();

    println!("How far apart are these cuisines *on the map*? (km)");
    let gd = &geo.distances;
    let km = |a: Cuisine, b: Cuisine| gd.get(a.index(), b.index());
    println!(
        "  Canada–US:       {:>8.0}",
        km(Cuisine::Canadian, Cuisine::US)
    );
    println!(
        "  Canada–France:   {:>8.0}",
        km(Cuisine::Canadian, Cuisine::French)
    );
    println!(
        "  India–Thailand:  {:>8.0}",
        km(Cuisine::IndianSubcontinent, Cuisine::Thai)
    );
    println!(
        "  India–N. Africa: {:>8.0}",
        km(Cuisine::IndianSubcontinent, Cuisine::NorthernAfrica)
    );

    println!("\nAnd in the culinary trees (cophenetic distance)?");
    for tree in [
        atlas.pattern_tree(Metric::Euclidean),
        atlas.pattern_tree(Metric::Cosine),
        atlas.pattern_tree(Metric::Jaccard),
        atlas.authenticity_tree(),
    ] {
        let claims = historical_claims(&tree);
        let [ca_fr, ca_us, in_na, in_th, _] = claims.evidence;
        println!(
            "  {:<34} CA–FR {:.2} vs CA–US {:.2} -> {}; IN–NA {:.2} vs IN–TH {:.2} -> {}",
            tree.description,
            ca_fr,
            ca_us,
            if claims.canada_closer_to_france_than_us {
                "France wins"
            } else {
                "US wins"
            },
            in_na,
            in_th,
            if claims.india_closer_to_north_africa_than_neighbors {
                "N. Africa wins"
            } else {
                "Asia wins"
            },
        );
    }

    println!("\nOverall agreement of each tree with geography:");
    for tree in [
        atlas.pattern_tree(Metric::Euclidean),
        atlas.pattern_tree(Metric::Cosine),
        atlas.pattern_tree(Metric::Jaccard),
        atlas.authenticity_tree(),
    ] {
        let score = geo_agreement(&tree, &geo);
        println!(
            "  {:<34} corr(coph, geo) = {:+.3}   Baker's gamma = {:+.3}",
            score.tree, score.cophenetic_vs_geo, score.bakers_gamma
        );
    }
    println!(
        "\nCuisine trees track geography overall, but flip exactly the pairs\n\
         with strong historical ties — the paper's Section VII conclusion."
    );
}
