//! Quickstart: build a cuisine atlas and regenerate the paper's core
//! artifacts in one minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use clustering::Metric;
use cuisine_atlas::report::{render_table1, render_tree};
use cuisine_atlas::{AtlasConfig, CuisineAtlas};

fn main() {
    // A 10%-scale corpus: fast, statistically faithful. Use
    // `AtlasConfig::paper()` for the full 118k-recipe corpus.
    let mut config = AtlasConfig::quick(42);
    config.corpus.scale = 0.1;
    println!(
        "generating ~{} synthetic recipes across 26 cuisines...",
        config.corpus.total_recipes()
    );
    let atlas = CuisineAtlas::build(&config);

    // Corpus statistics (paper §III).
    println!("\n--- corpus ---\n{}", atlas.db().stats().report());

    // Table I: the top significant patterns per cuisine.
    println!("--- Table I ---\n{}", render_table1(&atlas.table1()));

    // Figure 2: the Euclidean pattern dendrogram.
    println!(
        "--- Figure 2 ---\n{}",
        render_tree(&atlas.pattern_tree(Metric::Euclidean))
    );
}
